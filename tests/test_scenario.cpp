// Tests for the declarative scenario layer: spec parse/serialize
// round-trips, CLI and config-file parsing, registry lookups of every
// built-in topology preset and traffic kind, and the error paths for
// unknown names/keys/values.
#include <gtest/gtest.h>

#include <set>

#include "common/cli.hpp"
#include "core/scenario.hpp"
#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using core::ScenarioSpec;

namespace {

ScenarioSpec full_spec() {
  ScenarioSpec s;
  s.label = "round-trip";
  s.topology = "radix16-swless";
  s.topo["g"] = "3";
  s.topo["mesh_width"] = "2";
  s.mode = route::RouteMode::Valiant;
  s.scheme = route::VcScheme::ReducedSafe;
  s.traffic = "ring-allreduce";
  s.traffic_opts["scope"] = "wgroup";
  s.traffic_opts["bidir"] = "1";
  s.rates = {0.125, 0.25, 0.5};
  s.stop_latency_factor = 6.5;
  s.threads = 2;
  s.sim.warmup = 123;
  s.sim.measure = 456;
  s.sim.drain = 78;
  s.sim.pkt_len = 2;
  s.sim.seed = 99;
  s.sim.max_src_queue = 17;
  return s;
}

}  // namespace

// ------------------------------------------------------------ spec set/kv ---

TEST(ScenarioSpec, RoundTripsThroughKv) {
  const ScenarioSpec s = full_spec();
  const auto kv = s.to_kv();
  const ScenarioSpec back = ScenarioSpec::from_kv(kv);
  EXPECT_EQ(back.to_kv(), kv);
  EXPECT_EQ(back.label, "round-trip");
  EXPECT_EQ(back.mode, route::RouteMode::Valiant);
  EXPECT_EQ(back.scheme, route::VcScheme::ReducedSafe);
  EXPECT_EQ(back.rates, s.rates);
  EXPECT_EQ(back.topo.at("mesh_width"), "2");
  EXPECT_EQ(back.traffic_opts.at("bidir"), "1");
  EXPECT_EQ(back.sim.seed, 99u);
}

TEST(ScenarioSpec, ToConfigReparsesIdentically) {
  const ScenarioSpec s = full_spec();
  const auto series = core::parse_scenario_text(s.to_config());
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].to_kv(), s.to_kv());
}

TEST(ScenarioSpec, LinspaceWhenNoExplicitRates) {
  ScenarioSpec s;
  s.max_rate = 1.0;
  s.points = 4;
  const auto rates = s.effective_rates();
  ASSERT_EQ(rates.size(), 4u);
  EXPECT_DOUBLE_EQ(rates.front(), 0.25);
  EXPECT_DOUBLE_EQ(rates.back(), 1.0);
}

TEST(ScenarioSpec, ThreadsAcceptsAutoAndCounts) {
  ScenarioSpec s;
  s.set("threads", "4");
  EXPECT_EQ(s.threads, 4u);
  s.set("threads", "auto");
  EXPECT_EQ(s.threads, 0u);  // 0 = hardware concurrency at run time
  EXPECT_EQ(s.to_kv().at("threads"), "auto");
  EXPECT_EQ(ScenarioSpec::from_kv(s.to_kv()).threads, 0u);
  EXPECT_THROW(s.set("threads", "-2"), std::invalid_argument);
  EXPECT_THROW(s.set("threads", "many"), std::invalid_argument);
  EXPECT_GE(core::resolve_threads(0), 1u);
  EXPECT_EQ(core::resolve_threads(3), 3u);
}

TEST(ScenarioSpec, UnknownKeyThrows) {
  ScenarioSpec s;
  EXPECT_THROW(s.set("topolgy", "radix16-swless"), std::invalid_argument);
}

TEST(ScenarioSpec, MalformedValuesThrow) {
  ScenarioSpec s;
  EXPECT_THROW(s.set("points", "six"), std::invalid_argument);
  EXPECT_THROW(s.set("max_rate", "1.0x"), std::invalid_argument);
  EXPECT_THROW(s.set("mode", "psychic"), std::invalid_argument);
  EXPECT_THROW(s.set("scheme", "none"), std::invalid_argument);
  EXPECT_THROW(s.set("rates", "0.1,oops"), std::invalid_argument);
}

// ----------------------------------------------------------------- parsing ---

TEST(ScenarioParse, CliFlagsBecomeSpec) {
  const char* argv[] = {"prog",
                        "--topology=tiny-swless",
                        "--traffic=worst-case",
                        "--mode=valiant",
                        "--scheme=reduced",
                        "--topo.g=4",
                        "--traffic.hot_groups=2",
                        "--max_rate=0.5",
                        "--points=3",
                        "--my-driver-flag=7"};
  const Cli cli(10, const_cast<char**>(argv));
  std::vector<std::string> unused;
  const auto s = core::spec_from_cli(cli, {}, &unused);
  EXPECT_EQ(s.topology, "tiny-swless");
  EXPECT_EQ(s.traffic, "worst-case");
  EXPECT_EQ(s.mode, route::RouteMode::Valiant);
  EXPECT_EQ(s.scheme, route::VcScheme::Reduced);
  EXPECT_EQ(s.topo.at("g"), "4");
  EXPECT_EQ(s.traffic_opts.at("hot_groups"), "2");
  EXPECT_DOUBLE_EQ(s.max_rate, 0.5);
  EXPECT_EQ(s.points, 3);
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0], "my-driver-flag");
}

TEST(ScenarioParse, ConfigSectionsInheritBaseKeys) {
  const std::string text =
      "# a comment\n"
      "traffic = uniform\n"
      "max_rate = 1.0\n"
      "points = 6\n"
      "seed = 3\n"
      "\n"
      "[series SW-based]\n"
      "topology = radix16-swdf\n"
      "\n"
      "[series SW-less-2B]\n"
      "topology = radix16-swless\n"
      "topo.mesh_width = 2\n";
  const auto series = core::parse_scenario_text(text);
  ASSERT_EQ(series.size(), 2u);
  EXPECT_EQ(series[0].label, "SW-based");
  EXPECT_EQ(series[0].topology, "radix16-swdf");
  EXPECT_EQ(series[1].label, "SW-less-2B");
  EXPECT_EQ(series[1].topo.at("mesh_width"), "2");
  for (const auto& s : series) {
    EXPECT_EQ(s.traffic, "uniform");
    EXPECT_EQ(s.points, 6);
    EXPECT_EQ(s.sim.seed, 3u);
  }
}

TEST(ScenarioParse, NoSectionsYieldsSingleSpec) {
  const auto series =
      core::parse_scenario_text("topology = crossbar\ntraffic = uniform\n");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].topology, "crossbar");
}

TEST(ScenarioParse, SyntaxErrorsReportLineNumbers) {
  try {
    core::parse_scenario_text("traffic = uniform\nnot a kv line\n");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(core::parse_scenario_text("[series oops\n"),
               std::invalid_argument);
  EXPECT_THROW(core::parse_scenario_text("[series ]\n"),
               std::invalid_argument);
  EXPECT_THROW(core::parse_scenario_text("points = banana\n"),
               std::invalid_argument);
}

TEST(ScenarioParse, MissingFileThrows) {
  EXPECT_THROW(core::load_scenario_file("/nonexistent/sldf.conf"),
               std::runtime_error);
}

// -------------------------------------------------------------- registries ---

TEST(TopologyRegistry, ContainsAllBuiltinPresets) {
  const auto& reg = core::TopologyRegistry::instance();
  for (const char* name :
       {"radix16-swless", "radix32-swless", "swless", "tiny-swless",
        "radix16-swdf", "radix32-swdf", "swdf", "cgroup-mesh", "crossbar"}) {
    EXPECT_TRUE(reg.contains(name)) << name;
    EXPECT_FALSE(reg.help(name).empty()) << name;
  }
  EXPECT_FALSE(reg.contains("torus"));
}

TEST(TopologyRegistry, EveryPresetBuildsAtSmallScale) {
  // Trim the big presets so every entry builds in milliseconds.
  const std::vector<std::pair<std::string, core::KvMap>> cases = {
      {"radix16-swless", {{"g", "2"}}},
      {"radix32-swless", {{"g", "1"}}},
      {"swless", {{"g", "2"}}},
      {"tiny-swless", {}},
      {"radix16-swdf", {{"groups", "2"}}},
      {"radix32-swdf", {{"groups", "1"}}},
      {"swdf", {{"g", "2"}}},
      {"cgroup-mesh", {}},
      {"crossbar", {{"terminals", "6"}}}};
  for (const auto& [name, params] : cases) {
    sim::Network net;
    core::TopoConfig cfg;
    cfg.params = params;
    core::TopologyRegistry::instance().build(name, net, cfg);
    EXPECT_GT(net.num_routers(), 0u) << name;
    EXPECT_TRUE(net.finalized()) << name;
  }
}

TEST(TopologyRegistry, UnknownNameAndParameterThrow) {
  sim::Network net;
  EXPECT_THROW(
      core::TopologyRegistry::instance().build("torus", net, {}),
      std::invalid_argument);
  core::TopoConfig cfg;
  cfg.params["grr"] = "1";
  EXPECT_THROW(core::TopologyRegistry::instance().build("tiny-swless", net,
                                                        cfg),
               std::invalid_argument);
  core::TopoConfig bad_value;
  bad_value.params["g"] = "many";
  EXPECT_THROW(core::TopologyRegistry::instance().build("tiny-swless", net,
                                                        bad_value),
               std::invalid_argument);
}

TEST(TopologyRegistry, RejectsUnsupportedModeAndScheme) {
  // Builders that cannot honor a requested routing mode / VC scheme must
  // fail loudly instead of silently running their defaults.
  sim::Network net;
  core::TopoConfig valiant;
  valiant.mode = route::RouteMode::Valiant;
  EXPECT_THROW(core::TopologyRegistry::instance().build("crossbar", net,
                                                        valiant),
               std::invalid_argument);
  EXPECT_THROW(core::TopologyRegistry::instance().build("cgroup-mesh", net,
                                                        valiant),
               std::invalid_argument);
  core::TopoConfig reduced;
  reduced.scheme = route::VcScheme::Reduced;
  EXPECT_THROW(core::TopologyRegistry::instance().build("radix16-swdf", net,
                                                        reduced),
               std::invalid_argument);
  // Mode is honored by the switch-based builder, so Valiant is fine there.
  core::TopoConfig swdf_valiant;
  swdf_valiant.mode = route::RouteMode::Valiant;
  swdf_valiant.params["groups"] = "2";
  core::TopologyRegistry::instance().build("radix16-swdf", net, swdf_valiant);
  EXPECT_GT(net.num_routers(), 0u);
}

TEST(TrafficRegistry, EveryBuiltinKindConstructs) {
  sim::Network net;
  core::ScenarioSpec spec;
  spec.topology = "tiny-swless";
  core::build_network(net, spec);
  const auto& reg = traffic::TrafficRegistry::instance();
  const auto names = reg.names();
  const std::set<std::string> expected = {
      "uniform",       "bit-reverse", "bit-shuffle", "bit-transpose",
      "hotspot",       "worst-case",  "ring-allreduce"};
  EXPECT_EQ(std::set<std::string>(names.begin(), names.end()), expected);
  for (const auto& name : names) {
    core::KvMap opts;
    if (name == "hotspot") opts["hot_groups"] = "2";
    if (name == "ring-allreduce") {
      opts["scope"] = "wgroup";
      opts["bidir"] = "1";
    }
    auto tr = traffic::make_pattern(name, net, opts);
    ASSERT_NE(tr, nullptr) << name;
  }
}

TEST(TrafficRegistry, UnknownKindAndOptionThrow) {
  sim::Network net;
  core::ScenarioSpec spec;
  spec.topology = "crossbar";
  core::build_network(net, spec);
  EXPECT_THROW(traffic::make_pattern("tornado", net), std::invalid_argument);
  EXPECT_THROW(traffic::make_pattern("uniform", net, {{"oops", "1"}}),
               std::invalid_argument);
  EXPECT_THROW(
      traffic::make_pattern("ring-allreduce", net, {{"scope", "galaxy"}}),
      std::invalid_argument);
  EXPECT_THROW(
      traffic::make_pattern("hotspot", net, {{"hot_groups", "few"}}),
      std::invalid_argument);
}

// ------------------------------------------------------------ run_scenario ---

TEST(RunScenario, ExecutesSpecEndToEnd) {
  core::ScenarioSpec s;
  s.label = "smoke";
  s.topology = "tiny-swless";
  s.traffic = "uniform";
  s.rates = {0.2, 0.4};
  s.sim.warmup = 100;
  s.sim.measure = 300;
  s.sim.drain = 200;
  const auto series = core::run_scenario(s);
  EXPECT_EQ(series.label, "smoke");
  ASSERT_GE(series.points.size(), 1u);
  EXPECT_GT(series.points[0].res.accepted, 0.0);
  EXPECT_GT(series.points[0].res.avg_latency, 0.0);
}

TEST(RunScenario, ParallelSeriesMatchSerial) {
  core::ScenarioSpec s;
  s.topology = "crossbar";
  s.traffic = "uniform";
  s.rates = {0.3};
  s.sim.warmup = 50;
  s.sim.measure = 200;
  s.sim.drain = 100;
  auto a = s, b = s;
  a.label = "a";
  b.label = "b";
  b.sim.seed = 2;
  const auto serial = core::run_scenarios({a, b}, 1);
  const auto parallel = core::run_scenarios({a, b}, 2);
  ASSERT_EQ(serial.size(), 2u);
  ASSERT_EQ(parallel.size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(serial[i].label, parallel[i].label);
    ASSERT_EQ(serial[i].points.size(), parallel[i].points.size());
    EXPECT_DOUBLE_EQ(serial[i].points[0].res.avg_latency,
                     parallel[i].points[0].res.avg_latency);
  }
}

TEST(RunScenario, UnknownTopologyInSpecThrows) {
  core::ScenarioSpec s;
  s.topology = "hypercube";
  EXPECT_THROW(core::run_scenario(s), std::invalid_argument);
}

// ------------------------------------------------------------ Cli hardening ---

TEST(CliHardening, RejectsGarbageNumbers) {
  const char* argv[] = {"prog", "--n=12abc", "--x=0.5ugh", "--ok=7"};
  const Cli cli(4, const_cast<char**>(argv));
  EXPECT_THROW((void)cli.get_int("n", 0), std::invalid_argument);
  EXPECT_THROW((void)cli.get_double("x", 0.0), std::invalid_argument);
  EXPECT_EQ(cli.get_int("ok", 0), 7);
}

TEST(CliHardening, StrictParsersAcceptWholeStringsOnly) {
  long l = 0;
  double d = 0.0;
  bool b = false;
  EXPECT_TRUE(Cli::parse_long(" 42 ", l));
  EXPECT_EQ(l, 42);
  EXPECT_FALSE(Cli::parse_long("42q", l));
  EXPECT_FALSE(Cli::parse_long("", l));
  EXPECT_TRUE(Cli::parse_double("2.5e-1", d));
  EXPECT_DOUBLE_EQ(d, 0.25);
  EXPECT_FALSE(Cli::parse_double("1.0.0", d));
  EXPECT_TRUE(Cli::parse_bool("no", b));
  EXPECT_FALSE(b);
  EXPECT_TRUE(Cli::parse_bool("1", b));
  EXPECT_TRUE(b);
  EXPECT_FALSE(Cli::parse_bool("maybe", b));
  EXPECT_FALSE(Cli::parse_bool("", b));  // a forgotten value is an error
}

TEST(CliHardening, WarnsOncePerDuplicatedKeyLastValueWins) {
  const char* argv[] = {"prog",      "--seed=1", "--seed=2", "--seed",
                        "3",         "--x=1",    "--x=2",    "--once=9"};
  const Cli cli(8, const_cast<char**>(argv));
  // Last value wins (the pre-existing behavior) ...
  EXPECT_EQ(cli.get_int("seed", 0), 3);
  EXPECT_EQ(cli.get_int("x", 0), 2);
  EXPECT_EQ(cli.get_int("once", 0), 9);
  // ... but each duplicated key is recorded (and warned about) once.
  ASSERT_EQ(cli.duplicate_keys().size(), 2u);
  EXPECT_EQ(cli.duplicate_keys()[0], "seed");
  EXPECT_EQ(cli.duplicate_keys()[1], "x");
}

TEST(CliHardening, UniqueKeysReportNoDuplicates) {
  const char* argv[] = {"prog", "--a=1", "--b=2"};
  const Cli cli(3, const_cast<char**>(argv));
  EXPECT_TRUE(cli.duplicate_keys().empty());
}

TEST(ScenarioParse, DuplicateKeyInOneSectionKeepsLastValue) {
  // The duplicate warns on stderr (once per key); the parse itself must
  // stay last-wins, and a series overriding a base key is not a duplicate.
  const auto series = core::parse_scenario_text(
      "points = 3\npoints = 5\n\n[series a]\npoints = 7\n");
  ASSERT_EQ(series.size(), 1u);
  EXPECT_EQ(series[0].points, 7);
}

TEST(CliHardening, ReportsUnknownFlags) {
  const char* argv[] = {"prog", "--known=1", "--mystery", "--also-odd=2"};
  const Cli cli(4, const_cast<char**>(argv));
  const auto unknown = cli.unknown_keys({"known"});
  ASSERT_EQ(unknown.size(), 2u);
  EXPECT_EQ(unknown[0], "also-odd");
  EXPECT_EQ(unknown[1], "mystery");
}
