// Unit tests for common utilities: RNG, stats, CSV, CLI, thread pool.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "common/cli.hpp"
#include "common/csv.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strfmt.hpp"
#include "common/thread_pool.hpp"

using namespace sldf;

TEST(Rng, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 4);
}

TEST(Rng, BelowIsInRangeAndCoversAll) {
  Rng r(7);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.below(10);
    ASSERT_LT(v, 10u);
    ++seen[static_cast<std::size_t>(v)];
  }
  for (int c : seen) EXPECT_GT(c, 800);  // roughly uniform
}

TEST(Rng, BelowOneAlwaysZero) {
  Rng r(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.below(1), 0u);
}

TEST(Rng, UniformIsInUnitInterval) {
  Rng r(11);
  for (int i = 0; i < 1000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, GeometricSkipMeanMatchesRate) {
  Rng r(13);
  const double p = 0.05;
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(r.geometric_skip(p)) + 1.0;
  const double mean = sum / n;  // expected 1/p = 20
  EXPECT_NEAR(mean, 1.0 / p, 1.0);
}

TEST(Rng, GeometricSkipEdgeCases) {
  Rng r(17);
  EXPECT_EQ(r.geometric_skip(1.0), 0u);
  EXPECT_EQ(r.geometric_skip(0.0), ~0ULL);
}

TEST(Stats, MeanVarianceMinMax) {
  OnlineStats s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.variance(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(Stats, MergeEqualsCombined) {
  OnlineStats a, b, all;
  Rng r(3);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform() * 10;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
}

TEST(Histogram, QuantilesOfUniformRamp) {
  Histogram h(1.0);
  for (int i = 0; i < 1000; ++i) h.add(static_cast<double>(i));
  EXPECT_NEAR(h.quantile(0.5), 500.0, 2.0);
  EXPECT_NEAR(h.quantile(0.99), 990.0, 2.0);
}

TEST(Csv, EscapesSpecialCharacters) {
  EXPECT_EQ(CsvWriter::escape("plain"), "plain");
  EXPECT_EQ(CsvWriter::escape("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvWriter::escape("q\"q"), "\"q\"\"q\"");
}

TEST(Csv, WritesRowsToFile) {
  const auto path = std::filesystem::temp_directory_path() / "sldf_test.csv";
  {
    CsvWriter w(path.string(), {"a", "b"});
    w.row(std::vector<double>{1.5, 2.0});
  }
  std::ifstream in(path);
  std::string l1, l2;
  std::getline(in, l1);
  std::getline(in, l2);
  EXPECT_EQ(l1, "a,b");
  EXPECT_EQ(l2, "1.5,2");
  std::filesystem::remove(path);
}

TEST(Csv, RaggedRowThrows) {
  const auto path = std::filesystem::temp_directory_path() / "sldf_test2.csv";
  CsvWriter w(path.string(), {"a", "b"});
  EXPECT_THROW(w.row(std::vector<double>{1.0}), std::runtime_error);
  std::filesystem::remove(path);
}

TEST(Cli, ParsesFlagsAndValues) {
  const char* argv[] = {"prog", "positional", "--rate=0.5", "--out",
                        "file.csv", "--quick"};
  Cli cli(6, const_cast<char**>(argv));
  EXPECT_TRUE(cli.has("quick"));
  EXPECT_FALSE(cli.has("missing"));
  EXPECT_DOUBLE_EQ(cli.get_double("rate", 0.0), 0.5);
  EXPECT_EQ(cli.get("out"), "file.csv");
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "positional");
}

TEST(Cli, DefaultsApply) {
  const char* argv[] = {"prog"};
  Cli cli(1, const_cast<char**>(argv));
  EXPECT_EQ(cli.get_int("n", 42), 42);
  EXPECT_DOUBLE_EQ(cli.get_double("x", 1.5), 1.5);
}

TEST(Strf, FormatsLikePrintf) {
  EXPECT_EQ(strf("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(strf("empty"), "empty");
}

TEST(ThreadPool, ParallelForRunsAll) {
  std::atomic<int> sum{0};
  ThreadPool::parallel_for(100, 4, [&](std::size_t i) {
    sum += static_cast<int>(i);
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ThreadPool, ParallelForPropagatesException) {
  EXPECT_THROW(ThreadPool::parallel_for(
                   8, 2,
                   [](std::size_t i) {
                     if (i == 3) throw std::runtime_error("boom");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool pool(2);
  std::atomic<int> n{0};
  for (int i = 0; i < 10; ++i) pool.submit([&] { ++n; });
  pool.wait_idle();
  EXPECT_EQ(n.load(), 10);
}
