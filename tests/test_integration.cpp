// End-to-end simulations on small networks: cross-checking measured
// latency/throughput against the paper's analytical bounds (Eq. 2/4/5),
// scheme equivalence, and the sweep harness.
#include <gtest/gtest.h>

#include "core/experiment.hpp"
#include "core/params.hpp"
#include "route/routing_modes.hpp"
#include "topo/dragonfly.hpp"
#include "topo/swless.hpp"
#include "traffic/allreduce.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using route::RouteMode;
using route::VcScheme;

namespace {

topo::SwlessParams small_swless(VcScheme scheme = VcScheme::Baseline,
                                RouteMode mode = RouteMode::Minimal,
                                int g = 5) {
  // One W-group = 4 C-groups of 4 chips (2x2 routers), 3+3 ports.
  topo::SwlessParams p;
  p.a = 2;
  p.b = 2;
  p.chip_gx = 2;
  p.chip_gy = 2;
  p.noc_x = 1;
  p.noc_y = 1;
  p.ports_per_chiplet = 6;
  p.local_ports = 3;
  p.global_ports = 3;
  p.g = g;
  p.scheme = scheme;
  p.mode = mode;
  return p;
}

sim::SimConfig quick_cfg(double rate) {
  sim::SimConfig c;
  c.inj_rate_per_chip = rate;
  c.warmup = 500;
  c.measure = 1500;
  c.drain = 1000;
  return c;
}

}  // namespace

TEST(Integration, SwlessLowLoadDeliversEverything) {
  sim::Network net;
  topo::build_swless_dragonfly(net, small_swless());
  auto tr = traffic::make_pattern("uniform", net);
  const auto r = sim::run_sim(net, quick_cfg(0.1), *tr);
  EXPECT_TRUE(r.drained);
  EXPECT_EQ(r.delivered_measured, r.generated_measured);
  EXPECT_NEAR(r.accepted, 0.1, 0.02);
  EXPECT_EQ(r.suppressed, 0u);
}

TEST(Integration, AllVcSchemesAgreeAtLowLoad) {
  // At low load the three VC schemes ride identical minimal paths, so
  // latency must match closely.
  double lat[3];
  int i = 0;
  for (auto scheme :
       {VcScheme::Baseline, VcScheme::Reduced, VcScheme::ReducedSafe}) {
    sim::Network net;
    topo::build_swless_dragonfly(net, small_swless(scheme));
    auto tr = traffic::make_pattern("uniform", net);
    lat[i++] = sim::run_sim(net, quick_cfg(0.05), *tr).avg_latency;
  }
  EXPECT_NEAR(lat[0], lat[1], 3.0);
  EXPECT_NEAR(lat[0], lat[2], 3.0);
}

TEST(Integration, SaturationBelowTheoreticalGlobalBound) {
  // Eq.(2): t_global = (mn - ab + 1)/m^2; here n-as-built gives
  // h/m^2 * ... use the equation with the built parameters: k=6? The
  // small_swless config has k = 6 ports, ab = 4, m^2 = 4 chips:
  // bound = (6 - 4 + 1 + ... ) -- we simply require accepted <= offered
  // and a clear saturation plateau.
  sim::Network net;
  topo::build_swless_dragonfly(net, small_swless());
  auto tr = traffic::make_pattern("uniform", net);
  const auto lo = sim::run_sim(net, quick_cfg(0.2), *tr);
  const auto hi = sim::run_sim(net, quick_cfg(3.0), *tr);
  EXPECT_NEAR(lo.accepted, 0.2, 0.03);
  EXPECT_LT(hi.accepted, 3.0);  // saturated well below offered
  EXPECT_GT(hi.accepted, 0.2);
}

TEST(Integration, ValiantBeatsMinimalOnWorstCase) {
  // Paper Fig 13(b): minimal routing collapses on W_i -> W_{i+1} traffic;
  // Valiant sustains much higher load.
  double acc[2];
  int i = 0;
  for (auto mode : {RouteMode::Minimal, RouteMode::Valiant}) {
    sim::Network net;
    topo::build_swless_dragonfly(net,
                                 small_swless(VcScheme::Baseline, mode, 7));
    auto tr = traffic::make_pattern("worst-case", net);
    acc[i++] = sim::run_sim(net, quick_cfg(1.0), *tr).accepted;
  }
  EXPECT_GT(acc[1], acc[0] * 1.5)
      << "valiant=" << acc[1] << " minimal=" << acc[0];
}

TEST(Integration, AdaptiveMatchesMinimalOnUniform) {
  // UGAL-L should not pay the Valiant path-length tax when the minimal
  // gateways are uncongested: uniform throughput must beat always-Valiant
  // and track minimal closely.
  double acc[3];
  int i = 0;
  for (auto mode :
       {RouteMode::Minimal, RouteMode::Adaptive, RouteMode::Valiant}) {
    sim::Network net;
    topo::build_swless_dragonfly(net,
                                 small_swless(VcScheme::Baseline, mode, 7));
    auto tr = traffic::make_pattern("uniform", net);
    acc[i++] = sim::run_sim(net, quick_cfg(1.2), *tr).accepted;
  }
  EXPECT_GT(acc[1], acc[2]) << "adaptive must beat always-Valiant on uniform";
  EXPECT_GT(acc[1], acc[0] * 0.8) << "adaptive must track minimal on uniform";
}

TEST(Integration, AdaptiveApproachesValiantOnWorstCase) {
  // Under W_i -> W_{i+1} traffic the minimal gateway saturates and UGAL-L
  // must divert, recovering most of the Valiant throughput.
  double acc[3];
  int i = 0;
  for (auto mode :
       {RouteMode::Minimal, RouteMode::Adaptive, RouteMode::Valiant}) {
    sim::Network net;
    topo::build_swless_dragonfly(net,
                                 small_swless(VcScheme::Baseline, mode, 7));
    auto tr = traffic::make_pattern("worst-case", net);
    acc[i++] = sim::run_sim(net, quick_cfg(1.0), *tr).accepted;
  }
  EXPECT_GT(acc[1], acc[0] * 1.3)
      << "adaptive=" << acc[1] << " minimal=" << acc[0];
  EXPECT_GT(acc[1], acc[2] * 0.5)
      << "adaptive=" << acc[1] << " valiant=" << acc[2];
}

TEST(Integration, SwitchBasedAdaptiveDiverts) {
  double acc[2];
  int i = 0;
  for (auto mode : {RouteMode::Minimal, RouteMode::Adaptive}) {
    topo::SwDragonflyParams p;
    p.switches_per_group = 4;
    p.terminals_per_switch = 2;
    p.globals_per_switch = 2;
    p.groups = 0;  // 9 groups
    p.mode = mode;
    sim::Network net;
    topo::build_sw_dragonfly(net, p);
    auto tr = traffic::make_pattern("worst-case", net);
    acc[i++] = sim::run_sim(net, quick_cfg(1.0), *tr).accepted;
  }
  EXPECT_GT(acc[1], acc[0] * 1.3)
      << "adaptive=" << acc[1] << " minimal=" << acc[0];
}

TEST(Integration, SwitchBasedDragonflyRuns) {
  topo::SwDragonflyParams p;
  p.switches_per_group = 4;
  p.terminals_per_switch = 2;
  p.globals_per_switch = 2;
  p.groups = 5;
  sim::Network net;
  topo::build_sw_dragonfly(net, p);
  auto tr = traffic::make_pattern("uniform", net);
  const auto r = sim::run_sim(net, quick_cfg(0.3), *tr);
  EXPECT_TRUE(r.drained);
  EXPECT_NEAR(r.accepted, 0.3, 0.05);
}

TEST(Integration, SwlessInjectionBandwidthBeatsSwitchTerminal) {
  // The headline claim (Fig 10a): a C-group mesh accepts ~3 flits/cycle/
  // chip while a switch-attached chip is capped at 1 by its single link.
  sim::Network mesh_net;
  topo::CGroupShape shape;
  shape.chip_gx = shape.chip_gy = 2;
  shape.noc_x = shape.noc_y = 2;
  shape.ports_per_chiplet = 6;
  topo::build_mesh_network(mesh_net, shape, 1, 32);
  auto tr1 = traffic::make_pattern("uniform", mesh_net);
  const auto mesh_r = sim::run_sim(mesh_net, quick_cfg(4.0), *tr1);

  sim::Network xbar;
  topo::build_crossbar(xbar, 4, 1);
  auto tr2 = traffic::make_pattern("uniform", xbar);
  const auto xbar_r = sim::run_sim(xbar, quick_cfg(4.0), *tr2);

  EXPECT_GT(mesh_r.accepted, 2.0 * xbar_r.accepted);
  EXPECT_LE(xbar_r.accepted, 1.05);  // single-link injection cap
}

TEST(Integration, AllReduceUniOnCrossbarCapsAtOne) {
  // Fig 14(a): ring AllReduce through a switch saturates at 1 flit/cycle/
  // chip.
  sim::Network xbar;
  topo::build_crossbar(xbar, 4, 1);
  traffic::RingAllReduceTraffic tr(xbar, traffic::RingScope::CGroup, false);
  const auto r = sim::run_sim(xbar, quick_cfg(2.0), tr);
  EXPECT_NEAR(r.accepted, 1.0, 0.08);
}

TEST(Integration, AllReduceOnMeshExceedsSwitch) {
  // Fig 14(a): the wafer mesh sustains ~2 (uni) flits/cycle/chip because
  // each chip boundary carries multiple links.
  sim::Network net;
  topo::CGroupShape shape;
  shape.chip_gx = shape.chip_gy = 2;
  shape.noc_x = shape.noc_y = 2;
  shape.ports_per_chiplet = 6;
  topo::build_mesh_network(net, shape, 1, 32);
  traffic::RingAllReduceTraffic tr(net, traffic::RingScope::CGroup, false);
  const auto r = sim::run_sim(net, quick_cfg(4.0), tr);
  EXPECT_GT(r.accepted, 1.2);
}

TEST(Integration, SweepHarnessStopsAtSaturation) {
  core::SweepConfig cfg;
  cfg.rates = core::linspace_rates(3.0, 6);
  cfg.base = quick_cfg(0);
  cfg.stop_latency_factor = 4.0;
  const auto series = core::run_sweep(
      "test",
      [](sim::Network& n) {
        topo::build_swless_dragonfly(
            n, small_swless(VcScheme::Baseline, RouteMode::Minimal, 3));
      },
      [](const sim::Network& n) { return traffic::make_pattern("uniform", n); },
      cfg);
  EXPECT_GE(series.points.size(), 2u);
  EXPECT_LE(series.points.size(), 6u);
  // Latency must be monotone-ish increasing along the sweep.
  EXPECT_GT(series.points.back().res.avg_latency,
            series.points.front().res.avg_latency);
}

TEST(Integration, DoubledMeshWidthRaisesGlobalThroughput) {
  // Fig 11/12: 2B intra-C-group bandwidth lifts the uniform saturation.
  double acc[2];
  int i = 0;
  for (int w : {1, 2}) {
    auto p = small_swless();
    p.mesh_width = w;
    sim::Network net;
    topo::build_swless_dragonfly(net, p);
    auto tr = traffic::make_pattern("uniform", net);
    acc[i++] = sim::run_sim(net, quick_cfg(3.0), *tr).accepted;
  }
  EXPECT_GE(acc[1], acc[0] * 1.05)
      << "1B=" << acc[0] << " 2B=" << acc[1];
}

TEST(Integration, DeterministicAcrossRuns) {
  sim::Network net;
  topo::build_swless_dragonfly(net, small_swless());
  auto tr = traffic::make_pattern("bit-reverse", net);
  const auto a = sim::run_sim(net, quick_cfg(0.4), *tr);
  const auto b = sim::run_sim(net, quick_cfg(0.4), *tr);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.delivered_measured, b.delivered_measured);
}
