// Analytical-model tests: the paper's own numbers are the oracle.
// Eq.(1)-(7) §III-B, Table II/III, and the Fig 9 layout quantities.
#include <gtest/gtest.h>

#include "model/cost.hpp"
#include "model/energy.hpp"
#include "model/equations.hpp"
#include "model/layout.hpp"

using namespace sldf;
using namespace sldf::model;

TEST(Equations, TinyConfigFromPaper) {
  // §III-B1: (a,b,m,n) = (2,4,2,6) -> "the total chiplet number can reach
  // 1K" (exactly 1312).
  SwlessEquations e;
  e.a = 2;
  e.b = 4;
  e.m = 2;
  e.n = 6;
  EXPECT_EQ(e.k(), 12);
  EXPECT_EQ(e.h(), 5);
  EXPECT_EQ(e.g(), 41);
  EXPECT_EQ(e.total_chips(), 1312);
}

TEST(Equations, CaseStudyFromSectionIIIC) {
  // n=12, m=4, a=4, b=8: h=17, g=545, N=279040.
  SwlessEquations e;
  e.a = 4;
  e.b = 8;
  e.m = 4;
  e.n = 12;
  EXPECT_EQ(e.k(), 48);
  EXPECT_EQ(e.h(), 17);
  EXPECT_EQ(e.g(), 545);
  EXPECT_EQ(e.total_chips(), 279040);
}

TEST(Equations, BalancedConfigReachesUnitGlobalThroughput) {
  // Eq.(3): n = 3m, ab = 2m^2 gives t_global = 1 and t_local = 2.
  for (int m : {2, 3, 4, 6}) {
    const auto e = SwlessEquations::balanced(m);
    EXPECT_EQ(e.n, 3 * m);
    EXPECT_EQ(e.ab(), 2L * m * m);
    // Eq.(2) evaluates to 1 + 1/m^2 -> approaches 1 flit/cycle/chip.
    EXPECT_GE(e.t_global(), 1.0);
    EXPECT_LE(e.t_global(), 1.0 + 1.0 / (m * m) + 1e-9);
    EXPECT_DOUBLE_EQ(e.t_local(), 2.0);
    EXPECT_DOUBLE_EQ(e.t_cgroup(), 3.0);
  }
}

TEST(Equations, ThroughputBoundsOfCaseStudy) {
  SwlessEquations e;
  e.a = 4;
  e.b = 8;
  e.m = 4;
  e.n = 12;
  EXPECT_DOUBLE_EQ(e.t_global(), 17.0 / 16.0);  // ~1 flit/cycle/chip
  EXPECT_DOUBLE_EQ(e.t_local(), 2.0);
  EXPECT_DOUBLE_EQ(e.t_cgroup(), 3.0);
  EXPECT_DOUBLE_EQ(e.bisection_cgroup(), 24.0);  // k/2
}

TEST(Equations, DiameterEq7) {
  const auto d = SwlessDiameter::of(4);
  EXPECT_EQ(d.global_hops, 1);
  EXPECT_EQ(d.local_hops, 2);
  EXPECT_EQ(d.short_reach_hops, 30);  // 8m - 2 = 30 (Table III)
  const auto sb = SwlessDiameter::switch_based();
  EXPECT_EQ(sb.short_reach_hops, 0);
  // Latency estimate: long hops dominate in both, but the switch-based
  // variant pays two extra long hops.
  EXPECT_LT(d.latency_ns(), sb.latency_ns() + d.short_reach_hops * 5.0);
}

TEST(Energy, PriceHopsSplitsInterIntra) {
  double hops[kNumLinkTypes] = {};
  hops[static_cast<int>(LinkType::LongReachGlobal)] = 1;
  hops[static_cast<int>(LinkType::LongReachLocal)] = 2;
  hops[static_cast<int>(LinkType::ShortReach)] = 10;
  hops[static_cast<int>(LinkType::OnChip)] = 5;
  const auto e = price_hops(hops);
  EXPECT_DOUBLE_EQ(e.inter_cgroup_pj, 60.0);  // 3 x 20
  EXPECT_DOUBLE_EQ(e.intra_cgroup_pj, 15.0);  // 15 x 1 (paper average)
  const auto e2 = price_hops(hops, {}, /*use_intra_avg=*/false);
  EXPECT_DOUBLE_EQ(e2.intra_cgroup_pj, 10 * 2.0 + 5 * 0.1);
}

TEST(Energy, TerminalHopsPricedLikeLocal) {
  double hops[kNumLinkTypes] = {};
  hops[static_cast<int>(LinkType::Terminal)] = 2;
  EXPECT_DOUBLE_EQ(price_hops(hops).inter_cgroup_pj, 40.0);
}

TEST(CostTable, SlingshotRowMatchesPaper) {
  const auto r = row_slingshot_dragonfly();
  EXPECT_EQ(r.switches, 17440);
  EXPECT_EQ(r.processors, 279040);
  EXPECT_EQ(r.cabinets, 2180);
  EXPECT_NEAR(static_cast<double>(r.cables), 698000, 2000);  // N=698K
  EXPECT_EQ(r.switch_radix, 64);
}

TEST(CostTable, SwlessRowMatchesPaper) {
  const auto r = row_swless_dragonfly();
  EXPECT_EQ(r.switches, 0);
  EXPECT_EQ(r.processors, 279040);
  EXPECT_EQ(r.cabinets, 545);
  EXPECT_NEAR(static_cast<double>(r.cables), 419000, 2000);  // N=419K
}

TEST(CostTable, SwlessCableLengthLessThanHalfOfSlingshot) {
  // §III-C3: "the total cable length is only 73K*E, less than half of the
  // switch-based Dragonfly [154K*E]". Our transparent placement model must
  // preserve the factor-2 relationship.
  const auto sl = row_slingshot_dragonfly();
  const auto sw = row_swless_dragonfly();
  EXPECT_LT(sw.cable_length_E, 0.55 * sl.cable_length_E);
}

TEST(CostTable, PolarFlyRow) {
  const auto r = row_polarfly();
  EXPECT_EQ(r.switches, 4033);
  EXPECT_EQ(r.processors, 129056);
  EXPECT_NEAR(static_cast<double>(r.cables), 129056, 10);
}

TEST(CostTable, FatTreeRows) {
  const auto r1 = row_fat_tree(1, false);
  EXPECT_EQ(r1.switches, 5120);
  EXPECT_EQ(r1.processors, 65536);
  EXPECT_NEAR(static_cast<double>(r1.cables), 197000, 1000);
  const auto r4 = row_fat_tree(4, false);
  EXPECT_EQ(r4.switches, 20480);
  EXPECT_NEAR(static_cast<double>(r4.cables), 786000, 1000);
  EXPECT_DOUBLE_EQ(r4.t_local, 4.0);
  const auto rt = row_fat_tree(4, true);
  EXPECT_NEAR(rt.t_global, 4.0 / 3.0, 1e-9);
}

TEST(CostTable, FullTableHasNineRows) {
  const auto rows = table3();
  EXPECT_EQ(rows.size(), 9u);
  EXPECT_FALSE(format_table3(rows).empty());
  // Only the switch-less row has zero switches.
  int swless = 0;
  for (const auto& r : rows) swless += (r.switches == 0);
  EXPECT_EQ(swless, 1);
}

TEST(Layout, Fig9DerivedQuantities) {
  const auto r = evaluate_layout();
  EXPECT_DOUBLE_EQ(r.onwafer_channel_gbps, 4096);  // 128 x 32G (paper)
  EXPECT_DOUBLE_EQ(r.offwafer_port_gbps, 896);     // 8 x 112G (paper)
  // Paper: ~12 TB/s bisection, ~20.9 TB/s aggregate, ~1536 diff pairs,
  // ~5500 IOs.
  EXPECT_NEAR(r.bisection_TBps, 12.3, 0.5);
  EXPECT_NEAR(r.aggregate_TBps, 20.9, 1.0);
  EXPECT_EQ(r.differential_pairs, 1536);
  EXPECT_NEAR(r.total_io_pads, 5500, 600);
  EXPECT_TRUE(r.fits_wafer);
  EXPECT_TRUE(r.escape_feasible);
  EXPECT_TRUE(r.io_pads_feasible);
}

TEST(Layout, FormatProducesReport) {
  EXPECT_NE(format_layout(evaluate_layout()).find("bisection"),
            std::string::npos);
}
