// Switch-less Dragonfly routing tests (paper Algorithm 1 + §IV-B):
// delivery for every pair under every scheme/mode, hop bounds matching the
// diameter formula Eq.(7), VC-class discipline, and Valiant bouncing.
#include <gtest/gtest.h>

#include "route/swless_routing.hpp"
#include "test_fixtures.hpp"
#include "topo/swless.hpp"

using namespace sldf;
using namespace sldf::topo;
using route::RouteMode;
using route::VcScheme;
using sldf::testing::tiny_swless_params;
using sldf::testing::walk_route;

namespace {

SwlessParams tiny(VcScheme scheme, RouteMode mode, int g = 0) {
  return tiny_swless_params(scheme, mode, g);
}

sldf::testing::RouteWalk walk(const sim::Network& net, NodeId s, NodeId d,
                              std::int32_t mid) {
  return walk_route(net, s, d, mid);
}

}  // namespace

class SchemeParam
    : public ::testing::TestWithParam<std::tuple<VcScheme, RouteMode>> {};

TEST_P(SchemeParam, AllPairsDelivered) {
  const auto [scheme, mode] = GetParam();
  sim::Network net;
  build_swless_dragonfly(net, tiny(scheme, mode));
  const auto& T = net.topo<SwlessTopo>();
  const int G = T.p.effective_wgroups();
  int checked = 0;
  for (NodeId s : net.terminals()) {
    for (NodeId d : net.terminals()) {
      if (s == d) continue;
      if (mode == RouteMode::Valiant) {
        const auto gs = T.loc[static_cast<std::size_t>(s)].wg;
        const auto gd = T.loc[static_cast<std::size_t>(d)].wg;
        if (gs != gd) {
          for (std::int32_t mid = 0; mid < G; ++mid) {
            if (mid == gs || mid == gd) continue;
            const auto w = walk(net, s, d, mid);
            EXPECT_TRUE(w.delivered);
            ++checked;
          }
          continue;
        }
      }
      const auto w = walk(net, s, d, -1);
      EXPECT_TRUE(w.delivered);
      ++checked;
    }
  }
  EXPECT_GT(checked, 1000);
}

TEST_P(SchemeParam, VcCountWithinSchemeBudget) {
  const auto [scheme, mode] = GetParam();
  sim::Network net;
  build_swless_dragonfly(net, tiny(scheme, mode));
  const int budget = route::swless_num_vcs(scheme, mode);
  EXPECT_EQ(net.num_vcs(), budget);
  const auto& T = net.topo<SwlessTopo>();
  const int G = T.p.effective_wgroups();
  for (NodeId s : net.terminals()) {
    for (NodeId d : net.terminals()) {
      if (s == d) continue;
      const auto gs = T.loc[static_cast<std::size_t>(s)].wg;
      const auto gd = T.loc[static_cast<std::size_t>(d)].wg;
      if (mode == RouteMode::Valiant && gs != gd) {
        for (std::int32_t mid = 0; mid < G; ++mid) {
          if (mid == gs || mid == gd) continue;
          EXPECT_LT(walk(net, s, d, mid).max_vc, budget);
        }
      } else {
        EXPECT_LT(walk(net, s, d, -1).max_vc, budget);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, SchemeParam,
    ::testing::Combine(::testing::Values(VcScheme::Baseline, VcScheme::Reduced,
                                         VcScheme::ReducedSafe),
                       ::testing::Values(RouteMode::Minimal,
                                         RouteMode::Valiant,
                                         RouteMode::Adaptive)));

TEST(SwlessRouting, AdaptiveStaysMinimalOnIdleNetwork) {
  // With zero congestion the UGAL-L rule must always choose the minimal
  // path (one global hop).
  sim::Network net;
  build_swless_dragonfly(net, tiny(VcScheme::Baseline, RouteMode::Adaptive));
  const auto& T = net.topo<SwlessTopo>();
  for (NodeId s : net.terminals()) {
    for (NodeId d : net.terminals()) {
      if (s == d) continue;
      const auto gs = T.loc[static_cast<std::size_t>(s)].wg;
      const auto gd = T.loc[static_cast<std::size_t>(d)].wg;
      if (gs == gd) continue;
      const auto w = walk(net, s, d, -2);  // keep init_packet's choice
      EXPECT_TRUE(w.delivered);
      EXPECT_EQ(w.global_hops, 1) << "idle adaptive must route minimally";
    }
  }
}

TEST(SwlessRouting, MinimalLrHopsMatchDragonflyDiameter) {
  // Minimal routing: at most one global + two local long-reach hops.
  sim::Network net;
  build_swless_dragonfly(net,
                         tiny(VcScheme::Baseline, RouteMode::Minimal));
  for (NodeId s : net.terminals()) {
    for (NodeId d : net.terminals()) {
      if (s == d) continue;
      const auto w = walk(net, s, d, -1);
      EXPECT_LE(w.global_hops, 1);
      EXPECT_LE(w.lr_hops, 3);
    }
  }
}

TEST(SwlessRouting, BaselineVcStrictlyIncreasesAcrossCGroups) {
  sim::Network net;
  build_swless_dragonfly(net,
                         tiny(VcScheme::Baseline, RouteMode::Valiant));
  const auto& T = net.topo<SwlessTopo>();
  const int G = T.p.effective_wgroups();
  for (NodeId s : net.terminals()) {
    for (NodeId d : net.terminals()) {
      if (s == d) continue;
      const auto gs = T.loc[static_cast<std::size_t>(s)].wg;
      const auto gd = T.loc[static_cast<std::size_t>(d)].wg;
      if (gs == gd) continue;
      for (std::int32_t mid = 0; mid < G; ++mid) {
        if (mid == gs || mid == gd) continue;
        EXPECT_TRUE(walk(net, s, d, mid).vc_monotone_on_lr);
      }
    }
  }
}

TEST(SwlessRouting, ValiantUsesTwoGlobals) {
  sim::Network net;
  build_swless_dragonfly(net, tiny(VcScheme::Baseline, RouteMode::Valiant));
  const auto& T = net.topo<SwlessTopo>();
  NodeId s = net.terminals().front();
  // find a destination in another W-group
  for (NodeId d : net.terminals()) {
    const auto gs = T.loc[static_cast<std::size_t>(s)].wg;
    const auto gd = T.loc[static_cast<std::size_t>(d)].wg;
    if (gs == gd) continue;
    for (std::int32_t mid = 0; mid < T.p.effective_wgroups(); ++mid) {
      if (mid == gs || mid == gd) continue;
      EXPECT_EQ(walk(net, s, d, mid).global_hops, 2);
    }
    break;
  }
}

TEST(SwlessRouting, IntraCGroupStaysLocal) {
  sim::Network net;
  build_swless_dragonfly(net, tiny(VcScheme::Baseline, RouteMode::Minimal));
  const auto& T = net.topo<SwlessTopo>();
  for (NodeId s : net.terminals()) {
    for (NodeId d : net.terminals()) {
      if (s == d) continue;
      const auto& ls = T.loc[static_cast<std::size_t>(s)];
      const auto& ld = T.loc[static_cast<std::size_t>(d)];
      if (ls.wg == ld.wg && ls.cg == ld.cg)
        EXPECT_EQ(walk(net, s, d, -1).lr_hops, 0);
    }
  }
}

TEST(SwlessRouting, NoConverterVariantDelivers) {
  auto p = tiny(VcScheme::Baseline, RouteMode::Minimal);
  p.io_converters = false;
  sim::Network net;
  build_swless_dragonfly(net, p);
  for (NodeId s : net.terminals())
    for (NodeId d : net.terminals())
      if (s != d) EXPECT_TRUE(walk(net, s, d, -1).delivered);
}

TEST(SwlessRouting, LargerNocMeshDelivers) {
  // Radix-16-like shape (2x2 chiplets of 2x2 NoC) on a trimmed system.
  SwlessParams p;
  p.a = 2;
  p.b = 2;
  p.chip_gx = 2;
  p.chip_gy = 2;
  p.noc_x = 2;
  p.noc_y = 2;
  p.ports_per_chiplet = 6;
  p.local_ports = 3;
  p.global_ports = 3;
  p.g = 4;
  p.scheme = VcScheme::ReducedSafe;
  p.mode = RouteMode::Valiant;
  sim::Network net;
  build_swless_dragonfly(net, p);
  Rng rng(3);
  int pairs = 0;
  for (NodeId s : net.terminals()) {
    for (int t = 0; t < 8; ++t) {  // sample destinations
      const NodeId d =
          net.terminals()[rng.below(net.terminals().size())];
      if (d == s) continue;
      const auto w = walk(net, s, d, -2);  // -2: keep the RNG-chosen mid
      EXPECT_TRUE(w.delivered);
      ++pairs;
    }
  }
  EXPECT_GT(pairs, 1000);
}
