// Shared topology-construction fixtures for the test suites: the tiny
// switch-less instance (a=1, b=3, 2x2 single-router chiplets, h=2) and the
// small switch-based Dragonfly (3 switches/group, 2:2, max 7 groups) that
// the topology/routing/fault suites all build, plus a generic routing walk
// used wherever a suite needs to follow the routing function hop by hop.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <numeric>

#include "sim/network.hpp"
#include "sim/simulator.hpp"
#include "topo/dragonfly.hpp"
#include "topo/swless.hpp"

namespace sldf::testing {

/// Base seed of every randomized (property/fuzz) suite: `SLDF_FUZZ_SEED`
/// in the environment, else the suite's fixed CI default — the same knob
/// everywhere, mirroring how `SLDF_REGEN_GOLDEN` is the one regeneration
/// switch of the golden tiers. Randomized suites must print the seed they
/// ran with in every failure message, so a red run reproduces with one
/// env var and nothing else.
inline std::uint64_t fuzz_seed(std::uint64_t fixed_default) {
  if (const char* env = std::getenv("SLDF_FUZZ_SEED"))
    return std::strtoull(env, nullptr, 0);
  return fixed_default;
}

/// Flit/packet conservation audit over a finished run's ledger: everything
/// injected is delivered, dropped, or still in flight at drain — per plane
/// and in total. Use as EXPECT_TRUE(audit_conservation(res)).
inline ::testing::AssertionResult audit_conservation(
    const sim::SimResult& r) {
  const auto sum = [](const std::vector<std::uint64_t>& v) {
    return std::accumulate(v.begin(), v.end(), std::uint64_t{0});
  };
  if (r.generated_packets !=
      r.delivered_total + r.dropped_packets + r.inflight_packets)
    return ::testing::AssertionFailure()
           << "packet ledger: generated " << r.generated_packets
           << " != delivered " << r.delivered_total << " + dropped "
           << r.dropped_packets << " + inflight " << r.inflight_packets;
  if (r.generated_flits != r.ejected_flits + r.lost_flits + r.inflight_flits)
    return ::testing::AssertionFailure()
           << "flit ledger: generated " << r.generated_flits
           << " != ejected " << r.ejected_flits << " + lost " << r.lost_flits
           << " + inflight " << r.inflight_flits;
  if (sum(r.plane_generated) != r.generated_packets)
    return ::testing::AssertionFailure()
           << "plane_generated sums to " << sum(r.plane_generated)
           << ", total is " << r.generated_packets;
  if (sum(r.plane_delivered) != r.delivered_total)
    return ::testing::AssertionFailure()
           << "plane_delivered sums to " << sum(r.plane_delivered)
           << ", total is " << r.delivered_total;
  if (sum(r.plane_dropped) != r.dropped_packets)
    return ::testing::AssertionFailure()
           << "plane_dropped sums to " << sum(r.plane_dropped)
           << ", total is " << r.dropped_packets;
  if (sum(r.plane_inflight) != r.inflight_packets)
    return ::testing::AssertionFailure()
           << "plane_inflight sums to " << sum(r.plane_inflight)
           << ", total is " << r.inflight_packets;
  // Per-plane ledgers must close individually, not just in aggregate.
  for (std::size_t p = 0; p < r.plane_generated.size(); ++p) {
    if (r.plane_generated[p] != r.plane_delivered[p] + r.plane_dropped[p] +
                                    r.plane_inflight[p])
      return ::testing::AssertionFailure()
             << "plane " << p << " ledger: generated "
             << r.plane_generated[p] << " != delivered "
             << r.plane_delivered[p] << " + dropped " << r.plane_dropped[p]
             << " + inflight " << r.plane_inflight[p];
  }
  // Same discipline for the wafer split of a wafer-on-wafer stack.
  if (sum(r.wafer_generated) != r.generated_packets)
    return ::testing::AssertionFailure()
           << "wafer_generated sums to " << sum(r.wafer_generated)
           << ", total is " << r.generated_packets;
  if (sum(r.wafer_delivered) != r.delivered_total)
    return ::testing::AssertionFailure()
           << "wafer_delivered sums to " << sum(r.wafer_delivered)
           << ", total is " << r.delivered_total;
  if (sum(r.wafer_dropped) != r.dropped_packets)
    return ::testing::AssertionFailure()
           << "wafer_dropped sums to " << sum(r.wafer_dropped)
           << ", total is " << r.dropped_packets;
  if (sum(r.wafer_inflight) != r.inflight_packets)
    return ::testing::AssertionFailure()
           << "wafer_inflight sums to " << sum(r.wafer_inflight)
           << ", total is " << r.inflight_packets;
  for (std::size_t w = 0; w < r.wafer_generated.size(); ++w) {
    if (r.wafer_generated[w] != r.wafer_delivered[w] + r.wafer_dropped[w] +
                                    r.wafer_inflight[w])
      return ::testing::AssertionFailure()
             << "wafer " << w << " ledger: generated "
             << r.wafer_generated[w] << " != delivered "
             << r.wafer_delivered[w] << " + dropped " << r.wafer_dropped[w]
             << " + inflight " << r.wafer_inflight[w];
  }
  return ::testing::AssertionSuccess();
}

/// The tiny switch-less instance (max g = 7; chip == router).
inline topo::SwlessParams tiny_swless_params(
    route::VcScheme scheme = route::VcScheme::Baseline,
    route::RouteMode mode = route::RouteMode::Minimal, int g = 0) {
  topo::SwlessParams p;
  p.a = 1;
  p.b = 3;  // ab = 3 C-groups per W-group
  p.chip_gx = 2;
  p.chip_gy = 2;
  p.noc_x = 1;
  p.noc_y = 1;  // 2x2 router mesh, chip == router
  p.ports_per_chiplet = 4;
  p.local_ports = 2;
  p.global_ports = 2;  // g max = 7
  p.g = g;
  p.scheme = scheme;
  p.mode = mode;
  return p;
}

/// The small switch-based Dragonfly (max 7 groups).
inline topo::SwDragonflyParams small_swdf_params(
    int groups = 0, route::RouteMode mode = route::RouteMode::Minimal) {
  topo::SwDragonflyParams p;
  p.switches_per_group = 3;
  p.terminals_per_switch = 2;
  p.globals_per_switch = 2;  // max groups = 7
  p.groups = groups;
  p.mode = mode;
  return p;
}

/// One walk of the routing function src -> dst.
struct RouteWalk {
  bool delivered = false;
  int channel_hops = 0;
  int lr_hops = 0;  ///< Long-reach (local + global) hops.
  int global_hops = 0;
  int vertical_hops = 0;  ///< Inter-wafer bond crossings.
  int max_vc = 0;
  bool vc_monotone = true;        ///< VC never decreases across any hop.
  bool vc_monotone_on_lr = true;  ///< VC never decreases across LR hops.
  bool used_dead_link = false;    ///< Crossed a fault-masked channel.
};

/// Follows the routing function from `s` to `d`. `mid` >= -1 overrides the
/// packet's intermediate group after init_packet (pass -2 to keep the
/// choice init_packet made). Stops after `max_hops` channel hops (the walk
/// is then reported undelivered) or on the first dead-link crossing.
inline RouteWalk walk_route(const sim::Network& net, NodeId s, NodeId d,
                            std::int32_t mid, std::uint64_t rng_seed = 9,
                            int max_hops = 256) {
  RouteWalk w;
  sim::Packet pkt;
  pkt.src = s;
  pkt.dst = d;
  Rng rng(rng_seed);
  net.routing()->init_packet(net, pkt, rng);
  if (mid >= -1) pkt.mid_wgroup = mid;
  NodeId cur = s;
  PortIx in_port = net.router(s).inj_port;
  int last_vc = -1;
  int last_lr_vc = -1;
  for (;;) {
    const auto dec = net.routing()->route(net, cur, in_port, pkt);
    if (dec.out_vc < last_vc) w.vc_monotone = false;
    last_vc = dec.out_vc;
    const auto& r = net.router(cur);
    const ChanId c = r.out[static_cast<std::size_t>(dec.out_port)].out_chan;
    if (c == kInvalidChan) {
      w.delivered = (cur == d);
      return w;
    }
    if (!net.chan_live(c)) {
      w.used_dead_link = true;
      return w;
    }
    const auto& ch = net.chan(c);
    w.max_vc = std::max(w.max_vc, static_cast<int>(dec.out_vc));
    if (ch.type == LinkType::Vertical) ++w.vertical_hops;
    if (ch.type == LinkType::LongReachLocal ||
        ch.type == LinkType::LongReachGlobal) {
      ++w.lr_hops;
      if (ch.type == LinkType::LongReachGlobal) ++w.global_hops;
      if (dec.out_vc <= last_lr_vc) w.vc_monotone_on_lr = false;
      last_lr_vc = dec.out_vc;
    }
    cur = ch.dst;
    in_port = ch.dst_port;
    if (++w.channel_hops > max_hops) return w;  // loop guard
  }
}

}  // namespace sldf::testing
