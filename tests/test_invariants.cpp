// Randomized invariant tier: ~200 seeded random ScenarioSpecs spanning
// topology size x traffic pattern x plane/wafer axes x shard counts x
// static/online faults, each asserting the engine's core contracts —
// conservation-ledger balance, repeat-run bit-identity, serial-vs-sharded
// bit-identity, and checkpoint/restore byte-identity at a random mid-run
// cycle. The spec generator is driven by one base seed (SLDF_FUZZ_SEED in
// the environment; fixed default so CI is reproducible), and every failure
// prints that seed plus the offending spec as a ready-to-run `sldf` config.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/scenario.hpp"
#include "sim/simulator.hpp"
#include "test_fixtures.hpp"
#include "topo/faults.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using sldf::testing::audit_conservation;

namespace {

constexpr int kNumSpecs = 200;
constexpr std::uint64_t kDefaultSeed = 20260809;

/// Every deterministic field of two SimResults must match exactly,
/// including the order-sensitive latency statistics, the fault accounting,
/// and the per-plane / per-wafer ledgers.
void expect_bit_identical(const sim::SimResult& a, const sim::SimResult& b) {
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.accepted, b.accepted);
  EXPECT_EQ(a.avg_latency, b.avg_latency);
  EXPECT_EQ(a.p50_latency, b.p50_latency);
  EXPECT_EQ(a.p99_latency, b.p99_latency);
  EXPECT_EQ(a.min_latency, b.min_latency);
  EXPECT_EQ(a.max_latency, b.max_latency);
  EXPECT_EQ(a.generated_measured, b.generated_measured);
  EXPECT_EQ(a.delivered_measured, b.delivered_measured);
  EXPECT_EQ(a.delivered_total, b.delivered_total);
  EXPECT_EQ(a.generated_packets, b.generated_packets);
  EXPECT_EQ(a.generated_flits, b.generated_flits);
  EXPECT_EQ(a.ejected_flits, b.ejected_flits);
  EXPECT_EQ(a.lost_flits, b.lost_flits);
  EXPECT_EQ(a.inflight_packets, b.inflight_packets);
  EXPECT_EQ(a.inflight_flits, b.inflight_flits);
  EXPECT_EQ(a.dropped_packets, b.dropped_packets);
  EXPECT_EQ(a.dropped_flits, b.dropped_flits);
  EXPECT_EQ(a.rescued_packets, b.rescued_packets);
  EXPECT_EQ(a.suppressed, b.suppressed);
  EXPECT_EQ(a.drained, b.drained);
  EXPECT_EQ(a.cycles_run, b.cycles_run);
  EXPECT_EQ(a.flit_hops, b.flit_hops);
  EXPECT_EQ(a.plane_generated, b.plane_generated);
  EXPECT_EQ(a.plane_delivered, b.plane_delivered);
  EXPECT_EQ(a.plane_dropped, b.plane_dropped);
  EXPECT_EQ(a.plane_inflight, b.plane_inflight);
  EXPECT_EQ(a.wafer_generated, b.wafer_generated);
  EXPECT_EQ(a.wafer_delivered, b.wafer_delivered);
  EXPECT_EQ(a.wafer_dropped, b.wafer_dropped);
  EXPECT_EQ(a.wafer_inflight, b.wafer_inflight);
}

/// One random open-loop spec. Sizes are kept small (tiny-swless at g =
/// 3..5) so 200 specs stay affordable even under ASan; the variety lives
/// in the traffic, the scale-out axes, and the fault machinery.
core::ScenarioSpec random_spec(Rng& rng, int index) {
  core::ScenarioSpec s;
  s.label = "fuzz" + std::to_string(index);
  s.topology = "tiny-swless";
  s.topo["g"] = std::to_string(rng.range(3, 5));

  static const char* kTraffic[] = {"uniform", "uniform", "bit-reverse",
                                   "bit-shuffle", "bit-transpose",
                                   "worst-case"};
  s.traffic = kTraffic[rng.below(std::size(kTraffic))];

  // Scale-out axis: none / wafer stack / plane set (mutually exclusive).
  const auto axis = rng.below(10);
  if (axis < 3) {
    s.wafer_count = static_cast<int>(rng.range(2, 3));
    if (rng.bernoulli(0.5)) s.wafer_latency = static_cast<int>(rng.range(1, 4));
    if (rng.bernoulli(0.3)) {
      s.wafer_width_num = 1;
      s.wafer_width_den = static_cast<int>(rng.range(2, 4));
    }
  } else if (axis < 5) {
    s.plane_count = 2;
    static const route::PlanePolicy kPolicies[] = {
        route::PlanePolicy::Hash, route::PlanePolicy::RoundRobin,
        route::PlanePolicy::Adaptive};
    s.plane_policy = kPolicies[rng.below(std::size(kPolicies))];
  }

  s.rates = {0.05 + 0.05 * static_cast<double>(rng.below(5))};
  s.sim.warmup = static_cast<Cycle>(rng.range(30, 80));
  s.sim.measure = static_cast<Cycle>(rng.range(60, 160));
  s.sim.drain = 2000;
  s.sim.seed = rng.next();

  // Fault machinery on ~1/3 of the specs: static sets or an online
  // fail -> repair timeline, over every kind the build supports.
  if (rng.bernoulli(0.35)) {
    std::vector<const char*> kinds = {"any", "local", "global"};
    if (s.wafer_count >= 2) kinds.push_back("vertical");
    const char* kind = kinds[rng.below(kinds.size())];
    s.fault.seed = rng.next();
    s.fault.rescue = rng.bernoulli(0.5);
    if (s.plane_count >= 2 && rng.bernoulli(0.5))
      s.fault.plane = static_cast<int>(rng.below(2));
    std::ostringstream rate;
    rate << (0.05 + 0.1 * rng.uniform());
    if (rng.bernoulli(0.5)) {
      s.fault.rate = std::stod(rate.str());
      s.fault.kind = topo::parse_fault_kind(kind);
    } else {
      const Cycle fail_at = s.sim.warmup + rng.below(s.sim.measure);
      const Cycle repair_at = fail_at + 1 + rng.below(300);
      std::ostringstream ev;
      ev << "fail@" << fail_at << ":" << kind << "=" << rate.str()
         << ";repair@" << repair_at << ":" << kind << "=0";
      s.fault.events = ev.str();
    }
  }
  return s;
}

sim::SimResult run_one(const core::ScenarioSpec& s) {
  const auto series = core::run_scenario(s);
  EXPECT_EQ(series.points.size(), 1u);
  return series.points.at(0).res;
}

/// Checkpoint at a random mid-run cycle: the saved stream must restore
/// into a fresh engine byte-for-byte (an immediate re-save reproduces the
/// stream exactly) and the resumed run must finish bit-identical to an
/// uninterrupted one.
void check_checkpoint_roundtrip(const core::ScenarioSpec& s, Rng& rng) {
  sim::SimConfig cfg = s.sim;
  cfg.inj_rate_per_chip = s.rates.at(0);

  sim::Network net_a;
  core::build_network(net_a, s);
  const auto pat_a = traffic::make_pattern(s.traffic, net_a, s.traffic_opts);
  sim::Simulator a(net_a, cfg, *pat_a);
  const sim::SimResult golden = a.run();

  const Cycle mid = 1 + rng.below(cfg.warmup + cfg.measure);
  sim::Network net_b;
  core::build_network(net_b, s);
  const auto pat_b = traffic::make_pattern(s.traffic, net_b, s.traffic_opts);
  sim::Simulator b(net_b, cfg, *pat_b);
  while (b.now() < mid) b.step();
  std::stringstream ck;
  b.save_checkpoint(ck);

  sim::Network net_c;
  core::build_network(net_c, s);
  const auto pat_c = traffic::make_pattern(s.traffic, net_c, s.traffic_opts);
  sim::Simulator c(net_c, cfg, *pat_c);
  c.restore_checkpoint(ck);
  ASSERT_EQ(c.now(), mid);
  std::stringstream ck2;
  c.save_checkpoint(ck2);
  ASSERT_EQ(ck.str(), ck2.str())
      << "checkpoint at cycle " << mid
      << " does not survive a restore/re-save round trip byte-identically";
  const sim::SimResult resumed = c.run();
  expect_bit_identical(golden, resumed);
}

/// Runs one slice of the tier. Each spec always gets the conservation
/// audit and the repeat-run identity; the sharded-engine and checkpoint
/// probes rotate deterministically so the whole tier covers all four
/// invariants without quadrupling the runtime.
void run_tier(int begin, int end) {
  const std::uint64_t seed = sldf::testing::fuzz_seed(kDefaultSeed);
  Rng gen(seed);
  Rng aux(seed ^ 0x5ca1ab1e);
  for (int i = 0; i < end; ++i) {
    const auto s = random_spec(gen, i);
    if (i < begin) continue;  // generator stays in lockstep across slices
    SCOPED_TRACE("SLDF_FUZZ_SEED=" + std::to_string(seed) + " spec #" +
                 std::to_string(i) + "; reproduce with:\n" + s.to_config());
    const auto serial = run_one(s);
    ASSERT_TRUE(audit_conservation(serial));
    EXPECT_GT(serial.generated_packets, 0u);
    const auto repeat = run_one(s);
    expect_bit_identical(serial, repeat);
    if (i % 2 == 0) {
      auto sh = s;
      sh.sim.shards = 2;
      expect_bit_identical(serial, run_one(sh));
    }
    if (i % 5 == 0) check_checkpoint_roundtrip(s, aux);
    if (::testing::Test::HasFailure()) return;  // seed + spec already shown
  }
}

}  // namespace

// The tier is split into slices so a failure localizes quickly and ctest
// progress is visible; the spec generator is replayed from the base seed in
// every slice, so slice boundaries never change which specs exist.
TEST(RandomizedInvariants, Specs000To049) { run_tier(0, 50); }
TEST(RandomizedInvariants, Specs050To099) { run_tier(50, 100); }
TEST(RandomizedInvariants, Specs100To149) { run_tier(100, 150); }
TEST(RandomizedInvariants, Specs150To199) { run_tier(150, kNumSpecs); }
