// Traffic pattern tests: permutation bijectivity, hotspot confinement,
// worst-case group targeting, AllReduce ring structure.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "topo/swless.hpp"
#include "traffic/allreduce.hpp"
#include "traffic/pattern.hpp"

using namespace sldf;
using namespace sldf::topo;
using namespace sldf::traffic;

namespace {
void build_tiny(sim::Network& net, int g = 0) {
  SwlessParams p;
  p.a = 1;
  p.b = 3;
  p.chip_gx = 2;
  p.chip_gy = 2;
  p.noc_x = 1;
  p.noc_y = 1;
  p.ports_per_chiplet = 4;
  p.local_ports = 2;
  p.global_ports = 2;
  p.g = g;
  build_swless_dragonfly(net, p);
}
}  // namespace

TEST(Traffic, UniformNeverSelf) {
  sim::Network net;
  build_tiny(net);
  UniformTraffic t(net);
  Rng rng(1);
  std::set<NodeId> seen;
  const NodeId src = net.terminals().front();
  for (int i = 0; i < 5000; ++i) {
    const NodeId d = t.dest(net, src, rng);
    EXPECT_NE(d, src);
    seen.insert(d);
  }
  EXPECT_GT(seen.size(), net.terminals().size() / 2);
}

TEST(Traffic, PermutationsAreDeterministicOverSubCube) {
  sim::Network net;
  build_tiny(net);  // 84 terminals -> 64-entry permuted sub-cube (6 bits)
  Rng rng(2);
  for (auto kind : {Permutation::BitReverse, Permutation::BitShuffle,
                    Permutation::BitTranspose}) {
    PermutationTraffic t(net, kind);
    std::map<NodeId, NodeId> image;
    for (std::size_t i = 0; i < 64; ++i) {
      const NodeId src = net.terminals()[i];
      const NodeId d1 = t.dest(net, src, rng);
      const NodeId d2 = t.dest(net, src, rng);
      EXPECT_EQ(d1, d2) << "permutation must be deterministic";
      image[src] = d1;
    }
    // Bijective over the sub-cube.
    std::set<NodeId> vals;
    for (auto& [s, d] : image) vals.insert(d);
    EXPECT_EQ(vals.size(), 64u) << t.name();
  }
}

TEST(Traffic, BitReverseKnownValues) {
  sim::Network net;
  build_tiny(net);
  PermutationTraffic t(net, Permutation::BitReverse);
  Rng rng(3);
  // 6-bit sub-cube: index 1 (000001) -> 32 (100000).
  EXPECT_EQ(t.dest(net, net.terminals()[1], rng), net.terminals()[32]);
  EXPECT_EQ(t.dest(net, net.terminals()[0], rng), net.terminals()[0]);
}

TEST(Traffic, BitShuffleRotatesLeft) {
  sim::Network net;
  build_tiny(net);
  PermutationTraffic t(net, Permutation::BitShuffle);
  Rng rng(4);
  // 6 bits: 0b000011 (3) -> 0b000110 (6).
  EXPECT_EQ(t.dest(net, net.terminals()[3], rng), net.terminals()[6]);
  // MSB wraps: 0b100000 (32) -> 0b000001 (1).
  EXPECT_EQ(t.dest(net, net.terminals()[32], rng), net.terminals()[1]);
}

TEST(Traffic, BitTransposeSwapsHalves) {
  sim::Network net;
  build_tiny(net);
  PermutationTraffic t(net, Permutation::BitTranspose);
  Rng rng(5);
  // 6 bits: (hi=000, lo=011) -> (hi=011, lo=000) : 3 -> 24.
  EXPECT_EQ(t.dest(net, net.terminals()[3], rng), net.terminals()[24]);
}

TEST(Traffic, HotspotConfinesToFirstGroups) {
  sim::Network net;
  build_tiny(net);  // 7 W-groups, 12 chips each
  HotspotTraffic t(net, 4);
  EXPECT_EQ(t.active_chips(), 48);
  const auto& T = net.topo<SwlessTopo>();
  Rng rng(6);
  for (NodeId src : net.terminals()) {
    const auto wg = T.loc[static_cast<std::size_t>(src)].wg;
    const NodeId d = t.dest(net, src, rng);
    if (wg >= 4) {
      EXPECT_EQ(d, kInvalidNode);
    } else {
      ASSERT_NE(d, kInvalidNode);
      EXPECT_LT(T.loc[static_cast<std::size_t>(d)].wg, 4);
      EXPECT_NE(d, src);
    }
  }
}

TEST(Traffic, WorstCaseTargetsNextGroup) {
  sim::Network net;
  build_tiny(net);
  WorstCaseTraffic t(net);
  const auto& T = net.topo<SwlessTopo>();
  Rng rng(7);
  for (NodeId src : net.terminals()) {
    const auto wg = T.loc[static_cast<std::size_t>(src)].wg;
    for (int i = 0; i < 8; ++i) {
      const NodeId d = t.dest(net, src, rng);
      EXPECT_EQ(T.loc[static_cast<std::size_t>(d)].wg, (wg + 1) % 7);
    }
  }
}

TEST(Traffic, FactoryMakesAllKinds) {
  sim::Network net;
  build_tiny(net);
  for (const char* k : {"uniform", "bit-reverse", "bit-shuffle",
                        "bit-transpose", "hotspot", "worst-case"}) {
    EXPECT_NE(make_pattern(k, net), nullptr) << k;
  }
  EXPECT_THROW(make_pattern("nope", net), std::invalid_argument);
}

TEST(AllReduce, CGroupRingSuccessorStructure) {
  sim::Network net;
  build_tiny(net);
  RingAllReduceTraffic t(net, RingScope::CGroup, /*bidirectional=*/false);
  const auto& T = net.topo<SwlessTopo>();
  Rng rng(8);
  // Each chip's nodes must target the Hamiltonian-ring successor in the
  // same C-group: for a 2x2 chiplet grid the cycle is 1 -> 3 -> 2 -> 0.
  const int succ_in_grid[4] = {1, 3, 0, 2};
  for (NodeId src : net.terminals()) {
    const ChipId chip = net.chip_of(src);
    const NodeId d = t.dest(net, src, rng);
    const ChipId dchip = net.chip_of(d);
    EXPECT_EQ(T.chip_cgroup[static_cast<std::size_t>(chip)],
              T.chip_cgroup[static_cast<std::size_t>(dchip)]);
    EXPECT_EQ(dchip % 4, succ_in_grid[chip % 4]);
    // Ring neighbours are physically adjacent chiplets (Manhattan dist 1).
    const int ax = chip % 4 % 2, ay = chip % 4 / 2;
    const int bx = dchip % 4 % 2, by = dchip % 4 / 2;
    EXPECT_EQ(std::abs(ax - bx) + std::abs(ay - by), 1);
  }
}

TEST(AllReduce, WGroupRingCoversWholeGroup) {
  sim::Network net;
  build_tiny(net);
  RingAllReduceTraffic t(net, RingScope::WGroup, false);
  Rng rng(9);
  // Following successors from chip 0 must traverse all 12 chips of W-group
  // 0 before returning.
  std::set<ChipId> visited;
  ChipId c = 0;
  for (int i = 0; i < 12; ++i) {
    visited.insert(c);
    const NodeId src = net.chip_nodes(c).front();
    c = net.chip_of(t.dest(net, src, rng));
  }
  EXPECT_EQ(c, 0);
  EXPECT_EQ(visited.size(), 12u);
}

TEST(AllReduce, BidirectionalSplitsBothWays) {
  sim::Network net;
  build_tiny(net);
  RingAllReduceTraffic t(net, RingScope::CGroup, true);
  Rng rng(10);
  const NodeId src = net.chip_nodes(1).front();
  std::set<ChipId> dests;
  for (int i = 0; i < 200; ++i)
    dests.insert(net.chip_of(t.dest(net, src, rng)));
  EXPECT_EQ(dests.size(), 2u);  // both ring neighbours of chip 1: 0 and 3
  EXPECT_TRUE(dests.count(0));
  EXPECT_TRUE(dests.count(3));
}

TEST(AllReduce, NodeSlotsPairAcrossChips) {
  // With multi-node chips, node j targets node j of the neighbour chip.
  SwlessParams p;
  p.a = 2;
  p.b = 2;
  p.chip_gx = 2;
  p.chip_gy = 2;
  p.noc_x = 2;
  p.noc_y = 2;
  p.ports_per_chiplet = 6;
  p.local_ports = 3;
  p.global_ports = 3;
  p.g = 2;
  sim::Network net;
  build_swless_dragonfly(net, p);
  RingAllReduceTraffic t(net, RingScope::CGroup, false);
  Rng rng(11);
  for (ChipId c = 0; c < 4; ++c) {
    const auto& nodes = net.chip_nodes(c);
    for (std::size_t j = 0; j < nodes.size(); ++j) {
      const NodeId d = t.dest(net, nodes[j], rng);
      const auto& dn = net.chip_nodes(net.chip_of(d));
      EXPECT_EQ(d, dn[j]);
    }
  }
}
